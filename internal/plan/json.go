package plan

import (
	"encoding/json"
	"fmt"

	"mimdloop/internal/graph"
)

// scheduleJSON is the stable wire format: the graph is embedded so a
// schedule file is self-contained and can be validated on load.
type scheduleJSON struct {
	Timing     Timing `json:"timing"`
	Processors int    `json:"processors"`
	// Grain marks chunk-space placements (omitted for the default
	// iteration-space schedules, keeping pre-grain wire bytes identical).
	Grain      int         `json:"grain,omitempty"`
	Nodes      []nodeJSON  `json:"nodes"`
	Edges      []edgeJSON  `json:"edges"`
	Placements []placeJSON `json:"placements"`
}

type nodeJSON struct {
	Name    string `json:"name"`
	Latency int    `json:"latency"`
}

type edgeJSON struct {
	From     int `json:"from"`
	To       int `json:"to"`
	Distance int `json:"distance"`
	Cost     int `json:"cost"` // -1 = machine default
}

type placeJSON struct {
	Node  int `json:"node"`
	Iter  int `json:"iter"`
	Proc  int `json:"proc"`
	Start int `json:"start"`
}

// MarshalJSON encodes the schedule with its graph.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{
		Timing:     s.Timing,
		Processors: s.Processors,
		Grain:      s.Grain,
	}
	for _, nd := range s.Graph.Nodes {
		out.Nodes = append(out.Nodes, nodeJSON{Name: nd.Name, Latency: nd.Latency})
	}
	for _, e := range s.Graph.Edges {
		out.Edges = append(out.Edges, edgeJSON{From: e.From, To: e.To, Distance: e.Distance, Cost: e.Cost})
	}
	for _, p := range s.Placements {
		out.Placements = append(out.Placements, placeJSON{Node: p.Node, Iter: p.Iter, Proc: p.Proc, Start: p.Start})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and structurally validates a schedule (graph
// construction re-checks node/edge invariants; Validate is left to the
// caller, which knows whether the schedule should be complete).
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("plan: decode schedule: %w", err)
	}
	nodes := make([]graph.Node, len(in.Nodes))
	for i, nd := range in.Nodes {
		nodes[i] = graph.Node{ID: i, Name: nd.Name, Latency: nd.Latency}
	}
	edges := make([]graph.Edge, len(in.Edges))
	for i, e := range in.Edges {
		edges[i] = graph.Edge{From: e.From, To: e.To, Distance: e.Distance, Cost: e.Cost}
	}
	g, err := graph.New(nodes, edges)
	if err != nil {
		return fmt.Errorf("plan: decode schedule graph: %w", err)
	}
	if in.Grain < 0 {
		return fmt.Errorf("plan: decode schedule: negative grain %d", in.Grain)
	}
	if in.Grain > 1 {
		// A grain the schedule was built under always chunks; checking at
		// decode time keeps EffectiveGraph panic-free on tampered records.
		if _, err := graph.Chunked(g, in.Grain); err != nil {
			return fmt.Errorf("plan: decode schedule: %w", err)
		}
	}
	s.Graph = g
	s.Timing = in.Timing
	s.Processors = in.Processors
	s.Grain = in.Grain
	s.Placements = nil
	for _, p := range in.Placements {
		s.Placements = append(s.Placements, Placement{Node: p.Node, Iter: p.Iter, Proc: p.Proc, Start: p.Start})
	}
	return nil
}
