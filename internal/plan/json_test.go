package plan

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	g := chainGraph(t)
	s := Sequential(g, Timing{CommCost: 2, CommFromStart: true}, 3)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Timing != s.Timing || back.Processors != s.Processors {
		t.Fatalf("metadata changed: %+v vs %+v", back.Timing, s.Timing)
	}
	if !reflect.DeepEqual(back.Placements, s.Placements) {
		t.Fatal("placements changed in round trip")
	}
	if back.Graph.N() != g.N() || len(back.Graph.Edges) != len(g.Edges) {
		t.Fatal("graph changed in round trip")
	}
	if err := back.Validate(true); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
}

func TestScheduleJSONRejectsCorruptGraph(t *testing.T) {
	g := chainGraph(t)
	s := Sequential(g, Timing{}, 1)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(data), `"latency":2`, `"latency":0`, 1)
	var back Schedule
	if err := json.Unmarshal([]byte(corrupt), &back); err == nil {
		t.Fatal("zero-latency graph accepted")
	}
	if err := json.Unmarshal([]byte("{"), &back); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
