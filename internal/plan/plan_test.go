package plan

import (
	"strings"
	"testing"

	"mimdloop/internal/graph"
)

func chainGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	a := b.AddNode("A", 2)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTimingAvail(t *testing.T) {
	e := graph.Edge{From: 0, To: 1, Distance: 0, Cost: graph.DefaultCost}
	p := Placement{Node: 0, Iter: 0, Proc: 0, Start: 5}
	tm := Timing{CommCost: 3}
	if got := tm.Avail(p, 2, e, 0); got != 7 {
		t.Fatalf("local avail = %d, want 7 (finish)", got)
	}
	if got := tm.Avail(p, 2, e, 1); got != 10 {
		t.Fatalf("cross avail = %d, want 10 (finish+k)", got)
	}
	// Edge cost override.
	e.Cost = 1
	if got := tm.Avail(p, 2, e, 1); got != 8 {
		t.Fatalf("cross avail with edge cost = %d, want 8", got)
	}
	// CommFromStart ablation.
	tm.CommFromStart = true
	e.Cost = graph.DefaultCost
	if got := tm.Avail(p, 2, e, 1); got != 8 {
		t.Fatalf("start+k avail = %d, want 8", got)
	}
}

func TestSequentialSchedule(t *testing.T) {
	g := chainGraph(t)
	s := Sequential(g, Timing{CommCost: 2}, 4)
	if err := s.Validate(true); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 4*3 {
		t.Fatalf("makespan = %d, want 12", got)
	}
	if s.ProcsUsed() != 1 {
		t.Fatalf("procs used = %d", s.ProcsUsed())
	}
	if s.Iterations() != 4 {
		t.Fatalf("iterations = %d", s.Iterations())
	}
	if got := s.BusyCycles(); got != 12 {
		t.Fatalf("busy = %d", got)
	}
	if u := s.Utilization(); u != 1 {
		t.Fatalf("utilization = %v, want 1 for sequential", u)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := chainGraph(t)
	s := &Schedule{Graph: g, Timing: Timing{CommCost: 1}, Processors: 1, Placements: []Placement{
		{Node: 0, Iter: 0, Proc: 0, Start: 0},
		{Node: 1, Iter: 0, Proc: 0, Start: 1}, // A occupies [0,2)
	}}
	err := s.Validate(false)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v, want overlap", err)
	}
}

func TestValidateCatchesDependenceViolation(t *testing.T) {
	g := chainGraph(t)
	s := &Schedule{Graph: g, Timing: Timing{CommCost: 3}, Processors: 2, Placements: []Placement{
		{Node: 0, Iter: 0, Proc: 0, Start: 0},
		{Node: 1, Iter: 0, Proc: 1, Start: 3}, // needs finish(2)+k(3) = 5
	}}
	err := s.Validate(false)
	if err == nil || !strings.Contains(err.Error(), "available") {
		t.Fatalf("err = %v, want availability violation", err)
	}
	// Same schedule on one processor is fine.
	s.Placements[1].Proc = 0
	s.Placements[1].Start = 2
	if err := s.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesStructuralErrors(t *testing.T) {
	g := chainGraph(t)
	cases := []struct {
		name string
		pls  []Placement
		frag string
	}{
		{"unknown node", []Placement{{Node: 9, Iter: 0, Proc: 0, Start: 0}}, "unknown node"},
		{"negative iter", []Placement{{Node: 0, Iter: -1, Proc: 0, Start: 0}}, "negative iteration"},
		{"negative start", []Placement{{Node: 0, Iter: 0, Proc: 0, Start: -1}}, "negative cycle"},
		{"negative proc", []Placement{{Node: 0, Iter: 0, Proc: -1, Start: 0}}, "negative processor"},
		{"proc out of range", []Placement{{Node: 0, Iter: 0, Proc: 5, Start: 0}}, "declares"},
		{"duplicate", []Placement{
			{Node: 0, Iter: 0, Proc: 0, Start: 0},
			{Node: 0, Iter: 0, Proc: 1, Start: 0},
		}, "twice"},
		{"missing producer", []Placement{{Node: 1, Iter: 0, Proc: 0, Start: 9}}, "unplaced"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Schedule{Graph: g, Timing: Timing{CommCost: 1}, Processors: 2, Placements: tc.pls}
			err := s.Validate(false)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestValidateCompleteCount(t *testing.T) {
	g := chainGraph(t)
	s := &Schedule{Graph: g, Timing: Timing{CommCost: 1}, Processors: 1, Placements: []Placement{
		{Node: 0, Iter: 0, Proc: 0, Start: 0},
	}}
	if err := s.Validate(true); err == nil {
		t.Fatal("incomplete schedule accepted as complete")
	}
	if err := s.Validate(false); err != nil {
		t.Fatalf("prefix schedule rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chainGraph(t)
	s := Sequential(g, Timing{}, 2)
	cp := s.Clone()
	cp.Placements[0].Start = 99
	if s.Placements[0].Start == 99 {
		t.Fatal("Clone aliases placements")
	}
}

func TestByProcAndIndex(t *testing.T) {
	g := chainGraph(t)
	s := &Schedule{Graph: g, Timing: Timing{CommCost: 0}, Processors: 2, Placements: []Placement{
		{Node: 0, Iter: 0, Proc: 1, Start: 0},
		{Node: 1, Iter: 0, Proc: 1, Start: 2},
	}}
	grp := s.ByProc()
	if len(grp) != 2 || len(grp[0]) != 0 || len(grp[1]) != 2 {
		t.Fatalf("ByProc = %v", grp)
	}
	idx := s.Index()
	if idx[graph.InstanceID{Node: 1, Iter: 0}] != 1 {
		t.Fatalf("Index = %v", idx)
	}
}
