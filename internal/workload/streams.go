package workload

import (
	"fmt"

	"mimdloop/internal/graph"
)

// Streams builds the grain-friendly loop family: `chains` independent
// chains of `perChain` nodes each, where every node carries a
// distance-1 self-recurrence (x[i] depends on x[i-1], so every node is
// Cyclic and the loop is non-vectorizable) and consecutive nodes of a
// chain are linked by distance-0 flow dependences (each stage consumes
// the previous stage's current-iteration value). All nodes share one
// latency.
//
// The shape is what chunking was built for: the self-recurrences
// survive any grain G (a distance-d self edge becomes a distance-
// ceil(d/G) chunk self edge, never a zero-distance cycle), while the
// cross-node edges are acyclic — so under grain G the G per-iteration
// values crossing each chain link collapse into one block message per
// chunk. Contrast the random Section 4 suite, whose entangled
// cross-node dependence cycles collapse to zero-distance chunk cycles
// and make most grains infeasible.
func Streams(chains, perChain, latency int) (*graph.Graph, error) {
	if chains < 1 || perChain < 1 || latency < 1 {
		return nil, fmt.Errorf("workload: bad streams shape %d x %d, latency %d", chains, perChain, latency)
	}
	b := graph.NewBuilder()
	for c := 0; c < chains; c++ {
		for i := 0; i < perChain; i++ {
			id := b.AddNode(fmt.Sprintf("s%dn%d", c, i), latency)
			b.AddEdge(id, id, 1)
			if i > 0 {
				b.AddEdge(id-1, id, 0)
			}
		}
	}
	return b.Build()
}

// Braid is the denser variant of a single stream: a chain of `length`
// nodes, each with the distance-1 self-recurrence, where node i consumes
// the current-iteration values of all of nodes i-1..i-skip — the
// flow-dependence density of an unrolled stencil. More distance-0 edges
// mean more per-iteration messages for an ungrained schedule to pay and
// more values for a chunked one to batch; the cross-node edges stay
// acyclic, so every grain remains feasible.
func Braid(length, skip, latency int) (*graph.Graph, error) {
	if length < 1 || skip < 1 || latency < 1 {
		return nil, fmt.Errorf("workload: bad braid shape length %d, skip %d, latency %d", length, skip, latency)
	}
	b := graph.NewBuilder()
	for i := 0; i < length; i++ {
		id := b.AddNode(fmt.Sprintf("b%d", i), latency)
		b.AddEdge(id, id, 1)
		for s := 1; s <= skip && s <= i; s++ {
			b.AddEdge(id-s, id, 0)
		}
	}
	return b.Build()
}
