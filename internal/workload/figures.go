// Package workload provides the loops the paper evaluates: the worked
// examples of Sections 2-3 (Figures 1, 3, 7, 9), the 18th Livermore Loop
// and fifth-order elliptic wave filter of Section 3, and the 25-loop random
// suite of Section 4.
//
// The paper's figure scans are partially illegible, so the graph-drawn
// examples (Figures 1, 3, 9, 11, 12) are reconstructions that match every
// property the text states (node counts, classification, latency profiles,
// repetition structure); the code-listed example (Figure 7) is exact. Each
// constructor documents what is pinned by the text and what is
// reconstructed.
package workload

import (
	"mimdloop/internal/graph"
	"mimdloop/internal/loopir"
)

// Figure1 reconstructs the classification example of Figure 1: 12 nodes
// A..L with Flow-in = {A,B,C,D,F}, Flow-out = {G,H,J}, Cyclic = {E,I,K,L},
// and strongly connected subgraphs (E,I) and (L) inside the Cyclic subset —
// all as stated in Section 2.1. The exact edge list is a reconstruction.
func Figure1() *graph.Graph {
	b := graph.NewBuilder()
	ids := map[string]int{}
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L"} {
		ids[n] = b.AddNode(n, 1)
	}
	e := func(from, to string, d int) { b.AddEdge(ids[from], ids[to], d) }
	e("A", "E", 0)
	e("B", "E", 0)
	e("C", "F", 0)
	e("D", "F", 0)
	e("F", "I", 0)
	e("E", "I", 0)
	e("I", "E", 1)
	e("I", "K", 0)
	e("K", "L", 0)
	e("L", "L", 1)
	e("K", "G", 0)
	e("L", "J", 0)
	e("G", "H", 0)
	return b.MustBuild()
}

// Figure3 reconstructs the pattern-emergence example of Figure 3: seven
// unit-latency nodes A..G, all Cyclic, whose as-early-as-possible schedule
// repeats every iteration. Two independent three-node recurrences
// (A->B->E->A and C->D->F->C, both distance 1) join at G, which feeds
// nothing back; G is kept Cyclic by a distance-1 self edge, matching the
// paper's statement that the example contains only one kind of node.
func Figure3() *graph.Graph {
	b := graph.NewBuilder()
	ids := map[string]int{}
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		ids[n] = b.AddNode(n, 1)
	}
	e := func(from, to string, d int) { b.AddEdge(ids[from], ids[to], d) }
	e("A", "B", 0)
	e("B", "E", 0)
	e("E", "A", 1)
	e("C", "D", 0)
	e("D", "F", 0)
	e("F", "C", 1)
	e("E", "G", 0)
	e("F", "G", 0)
	e("G", "G", 1)
	return b.MustBuild()
}

// Figure7Source is the exact loop of Figure 7(a).
const Figure7Source = `
// Paper Figure 7(a): a loop DOACROSS cannot pipeline at all (k=2).
loop fig7(N = 100) {
    A[i] = A[i-1] + E[i-1]
    B[i] = A[i]
    C[i] = B[i]
    D[i] = D[i-1] + C[i-1]
    E[i] = D[i]
}
`

// Figure7 compiles the Figure 7(a) loop; its graph is exact (the paper
// lists the code).
func Figure7() *loopir.Compiled {
	return loopir.MustCompile(Figure7Source)
}

// Figure9 reconstructs the [Cytron86] example of Figure 9: 17 unit-step
// nodes 0..16 where classification yields Flow-in = {6..16} (11 nodes) and
// Cyclic = {0..5}, no Flow-out; total sequential work 22 cycles per
// iteration; the Cyclic subset runs as two communicating groups ({3,5} and
// {0,1,2,4}) with a pattern of height ~6 at k=2. Latencies are not all 1
// ("the latency of the operations is not unique"): the Cyclic nodes carry
// latencies (1,2,1,3,2,2) summing to 11, and the 11 Flow-in nodes are unit
// latency, giving the stated 22-cycle iteration.
func Figure9() *graph.Graph {
	b := graph.NewBuilder()
	lat := []int{1, 2, 1, 3, 2, 2}
	for i := 0; i < 6; i++ {
		b.AddNode(cytronName(i), lat[i])
	}
	for i := 6; i < 17; i++ {
		b.AddNode(cytronName(i), 1)
	}
	e := func(from, to, d int) { b.AddEdge(from, to, d) }
	// Cyclic core. Binding recurrence 0->1->2->4->0 (6 cycles / iter);
	// second recurrence 3->5->3 (5 cycles); the 2->3 link keeps it one
	// component.
	e(0, 1, 0)
	e(1, 2, 0)
	e(2, 4, 0)
	e(4, 0, 1)
	e(3, 5, 0)
	e(5, 3, 1)
	e(2, 3, 1)
	// Flow-in fringe: chains of unit-latency nodes feeding the core. The
	// 13->4 link positions node 4 late in the sequential body, which is
	// what limits DOACROSS to partial pipelining on this example.
	e(6, 7, 0)
	e(7, 8, 0)
	e(8, 0, 0)
	e(9, 10, 0)
	e(10, 11, 0)
	e(11, 1, 0)
	e(12, 13, 0)
	e(13, 3, 0)
	e(13, 4, 0)
	e(14, 15, 0)
	e(15, 16, 0)
	e(16, 5, 0)
	return b.MustBuild()
}

func cytronName(i int) string {
	return "n" + itoa(i)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
