package workload

import "mimdloop/internal/loopir"

// Livermore18Source is a reconstruction of the 18th Livermore Loop
// (2-D explicit hydrodynamics fragment) as scheduled in Figure 11. The
// paper's drawing has 29 nodes of which exactly 8 are Flow-in
// (nodes 1,2,3,6,9,10,11,14 in its numbering) and the rest Cyclic.
//
// This source reproduces those counts and the performance structure the
// paper reports: 8 statements read only external arrays (Flow-in), and the
// 21 zone-update statements form one connected Cyclic component with a
// 15-cycle main recurrence (m1..m15, closed by m15[i-1] -> m1) and a 6-node
// side recurrence (s1..s6) that overlaps with it. Our scheduler runs the
// two chains on separate processors at the 15-cycle recurrence bound
// (Sp ~ 48%, paper: 49.4); DOACROSS is crippled because m1 also consumes
// s6[i-1], the last statement of the body (Sp ~ 21%, paper: 12.6).
const Livermore18Source = `
// LFK 18 - 2D explicit hydrodynamics fragment (reconstruction; see
// DESIGN.md for the substitution note).
loop lfk18(N = 100) {
    // Flow-in: pure functions of external zone arrays (8 statements).
    g1[i] = ZA[i] * ZP[i]
    g2[i] = ZB[i] * ZQ[i]
    g3[i] = ZA[i] + ZB[i]
    g4[i] = ZP[i] - ZQ[i]
    g5[i] = ZM[i] * ZR[i]
    g6[i] = ZM[i] + ZZ[i]
    g7[i] = ZU[i] * ZR[i]
    g8[i] = ZU[i] - ZZ[i]

    // Main zone recurrence: 15 statements, closed by m15[i-1] -> m1.
    m1[i] = m15[i-1] + s6[i-1] + g1[i]
    m2[i] = m1[i] + g2[i]
    m3[i] = m2[i] * s
    m4[i] = m3[i] + g7[i]
    m5[i] = m4[i] + g8[i]
    m6[i] = m5[i] * t
    m7[i] = m6[i] + g3[i]
    m8[i] = m7[i] + g1[i]
    m9[i] = m8[i] + g2[i]
    m10[i] = m9[i] * s
    m11[i] = m10[i] + g5[i]
    m12[i] = m11[i] + g6[i]
    m13[i] = m12[i] + g4[i]
    m14[i] = m13[i] + g7[i]
    m15[i] = m14[i] + g8[i]

    // Side recurrence: 6 statements, closed by s6[i-1] -> s1; it hangs
    // off the main chain's first link and runs concurrently with it.
    s1[i] = s6[i-1] + m1[i]
    s2[i] = s1[i] + g3[i]
    s3[i] = s2[i] + g4[i]
    s4[i] = s3[i] + s2[i]
    s5[i] = s4[i] + g5[i]
    s6[i] = s5[i] + g6[i]
}
`

// Livermore18 compiles the LFK18 reconstruction.
func Livermore18() *loopir.Compiled {
	return loopir.MustCompile(Livermore18Source)
}
