package workload

import (
	"testing"

	"mimdloop/internal/classify"
	"mimdloop/internal/core"
)

func TestFigure1Classification(t *testing.T) {
	g := Figure1()
	r := classify.Partition(g)
	fi, cy, fo := r.Counts()
	if fi != 5 || cy != 4 || fo != 3 {
		t.Fatalf("Figure 1 classification = %d/%d/%d, want 5/4/3 (%v)", fi, cy, fo, r)
	}
	sub, _, err := classify.CyclicSubgraph(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sub.NonTrivialSCCs()); got != 2 {
		t.Fatalf("strongly connected subgraphs = %d, want 2 ((E,I) and (L))", got)
	}
}

func TestFigure3AllCyclicAndPatterns(t *testing.T) {
	g := Figure3()
	r := classify.Partition(g)
	if len(r.Cyclic) != 7 {
		t.Fatalf("Figure 3 should be all-Cyclic: %v", r)
	}
	// k=1 as in the figure ("execution time of each node and the cost of
	// communication are both assumed to be one cycle").
	res, err := core.CyclicSchedAll(g, core.Options{Processors: 4, CommCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The binding recurrences are 3 cycles per iteration.
	if rate := res.RatePerIteration(); rate < 3 || rate > 4 {
		t.Fatalf("Figure 3 rate = %v, want in [3,4]", rate)
	}
}

func TestFigure7Exact(t *testing.T) {
	c := Figure7()
	if c.Graph.N() != 5 || len(c.Graph.Edges) != 7 {
		t.Fatalf("Figure 7 graph: %d nodes %d edges", c.Graph.N(), len(c.Graph.Edges))
	}
	r := classify.Partition(c.Graph)
	if len(r.Cyclic) != 5 {
		t.Fatalf("Figure 7 classification: %v", r)
	}
}

func TestFigure9Properties(t *testing.T) {
	g := Figure9()
	if g.N() != 17 {
		t.Fatalf("nodes = %d, want 17", g.N())
	}
	if got := g.TotalLatency(); got != 22 {
		t.Fatalf("total latency = %d, want 22 (sequential cycles/iteration)", got)
	}
	r := classify.Partition(g)
	fi, cy, fo := r.Counts()
	if fi != 11 || cy != 6 || fo != 0 {
		t.Fatalf("classification = %d/%d/%d, want 11/6/0 (%v)", fi, cy, fo, r)
	}
	// Cyclic subset: one connected component, rate 6 cycles/iteration
	// bound by the 0->1->2->4 recurrence.
	sub, _, err := classify.CyclicSubgraph(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if comps := sub.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("cyclic components = %d, want 1", len(comps))
	}
	if cpi := sub.CriticalPathPerIteration(); cpi != 6 {
		t.Fatalf("critical cycles/iteration = %d, want 6", cpi)
	}
}

func TestLivermore18Properties(t *testing.T) {
	c := Livermore18()
	g := c.Graph
	if g.N() != 29 {
		t.Fatalf("nodes = %d, want 29", g.N())
	}
	r := classify.Partition(g)
	fi, cy, fo := r.Counts()
	if fi != 8 {
		t.Fatalf("Flow-in = %d, want 8 (paper: nodes 1,2,3,6,9,10,11,14)", fi)
	}
	if cy != 21 || fo != 0 {
		t.Fatalf("classification = %d/%d/%d, want 8/21/0", fi, cy, fo)
	}
	// It must schedule with a pattern.
	ls, err := core.ScheduleLoop(g, core.Options{Processors: 2, CommCost: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ls.GreedyFallback {
		t.Fatal("Livermore 18 fell back to greedy")
	}
}

func TestEllipticProperties(t *testing.T) {
	c := Elliptic()
	g := c.Graph
	if g.N() != 34 {
		t.Fatalf("nodes = %d, want 34", g.N())
	}
	adds, mults := 0, 0
	for _, nd := range g.Nodes {
		switch nd.Latency {
		case 1:
			adds++
		case 2:
			mults++
		default:
			t.Fatalf("node %s latency %d", nd.Name, nd.Latency)
		}
	}
	if adds != 26 || mults != 8 {
		t.Fatalf("op mix = %d adds / %d mults, want 26/8", adds, mults)
	}
	r := classify.Partition(g)
	fi, cy, fo := r.Counts()
	if fi != 0 || fo != 1 || cy != 33 {
		t.Fatalf("classification = %d/%d/%d, want 0/33/1 (single Flow-out output)", fi, cy, fo)
	}
	if g.Nodes[r.FlowOut[0]].Name != "out" {
		t.Fatalf("Flow-out node is %s, want out", g.Nodes[r.FlowOut[0]].Name)
	}
}

func TestRandomSuite(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 25 {
		t.Fatalf("suite size = %d, want 25", len(suite))
	}
	for i, g := range suite {
		if g.N() > 40 {
			t.Fatalf("loop %d has %d nodes, want <= 40", i, g.N())
		}
		if g.N() < 1 {
			t.Fatalf("loop %d empty", i)
		}
		if !g.HasCycle() {
			t.Fatalf("loop %d: cyclic subset has no cycle", i)
		}
		for _, nd := range g.Nodes {
			if nd.Latency < 1 || nd.Latency > 3 {
				t.Fatalf("loop %d: latency %d out of [1,3]", i, nd.Latency)
			}
		}
	}
	// Determinism.
	again, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	for i := range suite {
		if suite[i].N() != again[i].N() || len(suite[i].Edges) != len(again[i].Edges) {
			t.Fatalf("loop %d not deterministic", i)
		}
	}
}

func TestRandomBadSpec(t *testing.T) {
	if _, err := Random(RandomSpec{Nodes: 1, MaxLatency: 1}, 1); err == nil {
		t.Fatal("bad spec accepted")
	}
}
