package workload

import (
	"fmt"
	"math/rand"

	"mimdloop/internal/classify"
	"mimdloop/internal/graph"
)

// RandomSpec mirrors the paper's Section 4 generator parameters.
type RandomSpec struct {
	Nodes      int // 40 in the paper
	Simple     int // simple (distance-0) dependences; 20 in the paper
	LoopCarry  int // loop-carried (distance-1) dependences; 20 in the paper
	MaxLatency int // node latency uniform in [1, MaxLatency]; 3 in the paper
	// MinCyclic rejects draws whose extracted Cyclic subset is smaller
	// than this. The paper describes its extracted loops as graphs of up
	// to 40 nodes with complex, entangled dependence structure; a plain
	// uniform draw usually leaves only a handful of Cyclic nodes, so the
	// suite resamples (deterministically) until the subset is substantial.
	MinCyclic int
}

// PaperSpec is the parameterization of Section 4 (see MinCyclic for the one
// documented deviation).
var PaperSpec = RandomSpec{Nodes: 40, Simple: 20, LoopCarry: 20, MaxLatency: 3, MinCyclic: 12}

// Random generates one random loop per the paper's recipe and returns only
// its Cyclic subset ("we have extracted only Cyclic nodes from the graph"),
// with node IDs renumbered. Simple dependences are oriented from lower to
// higher node index so the loop body stays acyclic, matching the standard
// construction. If a seed's Cyclic subset comes out empty (possible for
// sparse draws), deterministic sub-seeds seed*31+attempt are tried; the
// paper's own seeds 1..25 presumably never hit this, ours rarely does.
func Random(spec RandomSpec, seed int64) (*graph.Graph, error) {
	if spec.Nodes < 2 || spec.MaxLatency < 1 {
		return nil, fmt.Errorf("workload: bad spec %+v", spec)
	}
	minCyclic := spec.MinCyclic
	if minCyclic < 1 {
		minCyclic = 1
	}
	for attempt := 0; attempt < 3000; attempt++ {
		s := seed
		if attempt > 0 {
			s = seed*1000003 + int64(attempt)
		}
		g := generate(spec, s)
		cls := classify.Partition(g)
		if len(cls.Cyclic) < minCyclic {
			continue
		}
		sub, _, err := classify.CyclicSubgraph(g, cls)
		if err != nil {
			return nil, err
		}
		return sub, nil
	}
	return nil, fmt.Errorf("workload: seed %d produced no cyclic subset of >= %d nodes in 3000 attempts", seed, minCyclic)
}

func generate(spec RandomSpec, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < spec.Nodes; i++ {
		b.AddNode(fmt.Sprintf("v%d", i), 1+rng.Intn(spec.MaxLatency))
	}
	for i := 0; i < spec.Simple; i++ {
		u := rng.Intn(spec.Nodes - 1)
		v := u + 1 + rng.Intn(spec.Nodes-u-1)
		b.AddEdge(u, v, 0)
	}
	for i := 0; i < spec.LoopCarry; i++ {
		b.AddEdge(rng.Intn(spec.Nodes), rng.Intn(spec.Nodes), 1)
	}
	return b.MustBuild()
}

// Suite returns the paper's 25 random loops (seeds 1..25), Cyclic subsets
// only.
func Suite() ([]*graph.Graph, error) {
	out := make([]*graph.Graph, 0, 25)
	for seed := int64(1); seed <= 25; seed++ {
		g, err := Random(PaperSpec, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}
