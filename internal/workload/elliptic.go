package workload

import "mimdloop/internal/loopir"

// EllipticSource reconstructs the fifth-order elliptic wave filter of
// Figure 12 ([PaKn89]'s force-directed-scheduling benchmark): 34 operations
// — 26 additions (latency 1) and 8 multiplications (latency 2) — arranged
// as a cascade of coupled second-order sections with global feedback, so
// that classification yields exactly one non-Cyclic node (the output tap,
// Flow-out), matching the paper's statement that "only node 34 is a
// non-Cyclic node (a Flow-out node)". The exact netlist is a
// reconstruction; the operation mix, latencies and classification are
// pinned by the text.
//
// The filter's state recurrence (in -> ... -> s8 -> r3 -> in) is 28 cycles
// of its 42-cycle body: our scheduler keeps that chain on one processor and
// the residue ops on another (Sp ~ 31%, paper: 30.9). The coupling adder
// r1 — textually the last statement — feeds a1 of the next iteration, so
// DOACROSS's pipelining skew exceeds the body length and it degenerates to
// sequential execution (Sp = 0, paper: 0).
const EllipticSource = `
// Fifth-order elliptic wave filter (reconstruction).
loop ewf(N = 100) {
    // State recurrence chain.
    in[i] = X[i] + r3[i-1]
    a1[i] = in[i] + r1[i-1]
    m1[i] = c1 * a1[i]      @lat(2)
    a2[i] = m1[i] + s2[i-1]
    a3[i] = a2[i] + a1[i]
    s1[i] = a3[i] + m1[i]
    b1[i] = s1[i] + s2[i-1]
    m3[i] = c3 * b1[i]      @lat(2)
    a4[i] = m3[i] + r2[i-1]
    a5[i] = a4[i] + b1[i]
    s3[i] = a5[i] + m3[i]
    b2[i] = s3[i] + s4[i-1]
    m5[i] = c5 * b2[i]      @lat(2)
    a6[i] = m5[i] + r3[i-1]
    a7[i] = a6[i] + b2[i]
    s5[i] = a7[i] + m5[i]
    b3[i] = s5[i] + s6[i-1]
    m7[i] = c7 * b3[i]      @lat(2)
    a8[i] = m7[i] + r4[i-1]
    a9[i] = a8[i] + b3[i]
    m8[i] = c8 * a9[i]      @lat(2)
    s8[i] = m8[i] + a8[i]
    r3[i] = s5[i] + s8[i]

    // Residue ops off the critical recurrence.
    m2[i] = c2 * a3[i]      @lat(2)
    s2[i] = m2[i] + a2[i]
    m4[i] = c4 * a5[i]      @lat(2)
    s4[i] = m4[i] + a4[i]
    m6[i] = c6 * a7[i]      @lat(2)
    s6[i] = m6[i] + a6[i]
    s7[i] = a9[i] + m7[i]
    r2[i] = s3[i] + b3[i]
    r4[i] = s7[i] + s2[i]
    out[i] = s8[i] + s4[i]
    r1[i] = s1[i] + b2[i]
}
`

// Elliptic compiles the elliptic wave filter reconstruction.
func Elliptic() *loopir.Compiled {
	return loopir.MustCompile(EllipticSource)
}
