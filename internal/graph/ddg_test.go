package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a0 -> a1 -> ... -> a(n-1) with distance-0 edges.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('a'+i)), 1)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("chain(%d): %v", n, err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("C", 2)
	if a != 0 || c != 1 {
		t.Fatalf("IDs = %d,%d, want 0,1", a, c)
	}
	b.AddEdge(a, c, 0)
	b.AddEdgeCost(c, a, 1, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("N = %d, want 2", g.N())
	}
	if id, ok := b.NodeByName("C"); !ok || id != 1 {
		t.Fatalf("NodeByName(C) = %d,%v", id, ok)
	}
	if _, ok := b.NodeByName("Z"); ok {
		t.Fatal("NodeByName(Z) unexpectedly found")
	}
	if got := g.TotalLatency(); got != 3 {
		t.Fatalf("TotalLatency = %d, want 3", got)
	}
	if got := g.MaxDistance(); got != 1 {
		t.Fatalf("MaxDistance = %d, want 1", got)
	}
	if got := g.MaxCost(3); got != 5 {
		t.Fatalf("MaxCost = %d, want 5", got)
	}
	if got := EdgeCost(g.Edges[0], 7); got != 7 {
		t.Fatalf("EdgeCost(default) = %d, want 7", got)
	}
	if got := EdgeCost(g.Edges[1], 7); got != 5 {
		t.Fatalf("EdgeCost(override) = %d, want 5", got)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
		edges []Edge
		frag  string
	}{
		{"empty", nil, nil, "no nodes"},
		{"bad latency", []Node{{ID: 0, Name: "A", Latency: 0}}, nil, "latency"},
		{"bad id", []Node{{ID: 1, Name: "A", Latency: 1}}, nil, "dense ID"},
		{"edge out of range", []Node{{ID: 0, Name: "A", Latency: 1}}, []Edge{{From: 0, To: 3, Cost: DefaultCost}}, "unknown node"},
		{"negative distance", []Node{{ID: 0, Name: "A", Latency: 1}}, []Edge{{From: 0, To: 0, Distance: -1, Cost: DefaultCost}}, "negative distance"},
		{"zero self loop", []Node{{ID: 0, Name: "A", Latency: 1}}, []Edge{{From: 0, To: 0, Distance: 0, Cost: DefaultCost}}, "self loop"},
		{"bad cost", []Node{{ID: 0, Name: "A", Latency: 1}, {ID: 1, Name: "B", Latency: 1}}, []Edge{{From: 0, To: 1, Cost: -2}}, "invalid cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.nodes, tc.edges)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("New() err = %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestZeroDistanceCycleRejected(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	d := b.AddNode("C", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, d, 0)
	b.AddEdge(d, a, 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Build() err = %v, want intra-iteration cycle error", err)
	}
	// Same cycle broken by a loop-carried edge is legal.
	b2 := NewBuilder()
	a = b2.AddNode("A", 1)
	c = b2.AddNode("B", 1)
	d = b2.AddNode("C", 1)
	b2.AddEdge(a, c, 0)
	b2.AddEdge(c, d, 0)
	b2.AddEdge(d, a, 1)
	if _, err := b2.Build(); err != nil {
		t.Fatalf("Build() with distance-1 back edge: %v", err)
	}
}

func TestSuccsPredsDeduplicated(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(a, c, 1) // parallel edge, different distance
	g := b.MustBuild()
	if got := g.Succs(a); !reflect.DeepEqual(got, []int{c}) {
		t.Fatalf("Succs = %v, want [%d]", got, c)
	}
	if got := g.Preds(c); !reflect.DeepEqual(got, []int{a}) {
		t.Fatalf("Preds = %v, want [%d]", got, a)
	}
	if got := len(g.Out(a)); got != 2 {
		t.Fatalf("Out edges = %d, want 2", got)
	}
}

func TestBodyOrderChain(t *testing.T) {
	g := chain(t, 5)
	want := []int{0, 1, 2, 3, 4}
	if got := g.BodyOrder(); !reflect.DeepEqual(got, want) {
		t.Fatalf("BodyOrder = %v, want %v", got, want)
	}
	rank := g.BodyRank()
	for i, v := range want {
		if rank[v] != i {
			t.Fatalf("BodyRank[%d] = %d, want %d", v, rank[v], i)
		}
	}
}

func TestBodyOrderIgnoresLoopCarried(t *testing.T) {
	// B -> A with distance 1 must not force B before A.
	b := NewBuilder()
	a := b.AddNode("A", 1)
	bb := b.AddNode("B", 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, a, 1)
	g := b.MustBuild()
	if got := g.BodyOrder(); !reflect.DeepEqual(got, []int{a, bb}) {
		t.Fatalf("BodyOrder = %v, want [A B]", got)
	}
}

func TestASAPLevels(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 2)
	c := b.AddNode("B", 1)
	d := b.AddNode("C", 3)
	e := b.AddNode("D", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(a, d, 0)
	b.AddEdge(c, e, 0)
	b.AddEdge(d, e, 0)
	g := b.MustBuild()
	lv := g.ASAPLevels()
	want := []int{0, 2, 2, 5}
	if !reflect.DeepEqual(lv, want) {
		t.Fatalf("ASAPLevels = %v, want %v", lv, want)
	}
}

func TestSCCs(t *testing.T) {
	// Two cycles: {0,1} via distance-1 back edge, {3} self loop; node 2
	// bridges them.
	b := NewBuilder()
	n0 := b.AddNode("0", 1)
	n1 := b.AddNode("1", 1)
	n2 := b.AddNode("2", 1)
	n3 := b.AddNode("3", 1)
	b.AddEdge(n0, n1, 0)
	b.AddEdge(n1, n0, 1)
	b.AddEdge(n1, n2, 0)
	b.AddEdge(n2, n3, 0)
	b.AddEdge(n3, n3, 1)
	g := b.MustBuild()

	nontrivial := g.NonTrivialSCCs()
	var flat [][]int
	for _, c := range nontrivial {
		flat = append(flat, c)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i][0] < flat[j][0] })
	want := [][]int{{0, 1}, {3}}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("NonTrivialSCCs = %v, want %v", flat, want)
	}
	if !g.HasCycle() {
		t.Fatal("HasCycle = false, want true")
	}
	all := g.SCCs()
	total := 0
	for _, c := range all {
		total += len(c)
	}
	if total != g.N() {
		t.Fatalf("SCCs cover %d nodes, want %d", total, g.N())
	}
}

func TestSCCsAcyclic(t *testing.T) {
	g := chain(t, 4)
	if g.HasCycle() {
		t.Fatal("chain reported cyclic")
	}
	if got := g.NonTrivialSCCs(); got != nil {
		t.Fatalf("NonTrivialSCCs = %v, want nil", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode(string(rune('a'+i)), 1)
	}
	b.AddEdge(0, 1, 0)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 2, 1)
	// 4 and 5 isolated.
	g := b.MustBuild()
	got := g.ConnectedComponents()
	want := [][]int{{0, 1}, {2, 3}, {4}, {5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ConnectedComponents = %v, want %v", got, want)
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 2)
	d := b.AddNode("C", 3)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, d, 0)
	b.AddEdge(d, a, 1)
	g := b.MustBuild()
	sub, back, err := g.InducedSubgraph([]int{c, d})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 {
		t.Fatalf("sub.N = %d, want 2", sub.N())
	}
	if !reflect.DeepEqual(back, []int{1, 2}) {
		t.Fatalf("mapping = %v, want [1 2]", back)
	}
	if len(sub.Edges) != 1 || sub.Edges[0].From != 0 || sub.Edges[0].To != 1 {
		t.Fatalf("sub edges = %v, want single 0->1", sub.Edges)
	}
	if sub.Nodes[1].Latency != 3 {
		t.Fatalf("latency not preserved: %v", sub.Nodes)
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("InducedSubgraph(99) did not fail")
	}
}

func TestUnwindReducesDistances(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 3)
	g := b.MustBuild()
	ng, factor, err := g.NormalizeDistances()
	if err != nil {
		t.Fatal(err)
	}
	if factor != 3 {
		t.Fatalf("factor = %d, want 3", factor)
	}
	if ng.N() != 6 {
		t.Fatalf("unwound N = %d, want 6", ng.N())
	}
	if md := ng.MaxDistance(); md > 1 {
		t.Fatalf("unwound MaxDistance = %d, want <= 1", md)
	}
	// Edge count preserved per copy.
	if len(ng.Edges) != len(g.Edges)*3 {
		t.Fatalf("unwound edges = %d, want %d", len(ng.Edges), len(g.Edges)*3)
	}
}

func TestUnwindIdentity(t *testing.T) {
	g := chain(t, 3)
	ng, factor, err := g.NormalizeDistances()
	if err != nil {
		t.Fatal(err)
	}
	if factor != 1 || ng.N() != 3 {
		t.Fatalf("NormalizeDistances trivial case: factor=%d N=%d", factor, ng.N())
	}
	if _, err := g.Unwind(0); err == nil {
		t.Fatal("Unwind(0) did not fail")
	}
}

func TestInstancePreds(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 1)
	b.AddEdge(a, a, 2)
	g := b.MustBuild()

	if got := g.InstancePredCount(a, 0); got != 0 {
		t.Fatalf("InstancePredCount(A,0) = %d, want 0", got)
	}
	if got := g.InstancePredCount(a, 1); got != 1 {
		t.Fatalf("InstancePredCount(A,1) = %d, want 1", got)
	}
	if got := g.InstancePredCount(a, 2); got != 2 {
		t.Fatalf("InstancePredCount(A,2) = %d, want 2", got)
	}
	preds := g.InstancePreds(a, 2)
	want := []InstanceID{{Node: a, Iter: 0}, {Node: c, Iter: 1}}
	sort.Slice(preds, func(i, j int) bool { return preds[i].Node < preds[j].Node })
	if !reflect.DeepEqual(preds, want) {
		t.Fatalf("InstancePreds(A,2) = %v, want %v", preds, want)
	}
}

func TestCriticalPathPerIteration(t *testing.T) {
	// Cycle A(1) -> B(1) -> A with distance 1: 2 cycles / 1 iter.
	b := NewBuilder()
	a := b.AddNode("A", 1)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 1)
	g := b.MustBuild()
	if got := g.CriticalPathPerIteration(); got != 2 {
		t.Fatalf("CPI = %d, want 2", got)
	}
	// Acyclic -> 0.
	if got := chain(t, 4).CriticalPathPerIteration(); got != 0 {
		t.Fatalf("acyclic CPI = %d, want 0", got)
	}
	// Self loop with distance 2, latency 3: ceil(3/2) = 2.
	b2 := NewBuilder()
	x := b2.AddNode("X", 3)
	b2.AddEdgeCost(x, x, 2, DefaultCost)
	g2 := b2.MustBuild()
	if got := g2.CriticalPathPerIteration(); got != 2 {
		t.Fatalf("self-loop CPI = %d, want 2", got)
	}
}

func TestCloneAndFormat(t *testing.T) {
	g := chain(t, 3)
	cp := g.Clone()
	cp.Nodes[0].Latency = 99
	if g.Nodes[0].Latency == 99 {
		t.Fatal("Clone aliases node storage")
	}
	if s := g.String(); !strings.Contains(s, "3 nodes") {
		t.Fatalf("String = %q", s)
	}
	f := g.Format()
	if !strings.Contains(f, "node 0") || !strings.Contains(f, "dist=0") {
		t.Fatalf("Format = %q", f)
	}
}

// randomGraph builds a valid random DDG for property tests: distance-0 edges
// only flow from lower to higher IDs, so the body is acyclic by
// construction.
func randomGraph(rng *rand.Rand, n, sd, lcd int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A'+i%26))+string(rune('0'+i/26)), 1+rng.Intn(3))
	}
	for i := 0; i < sd; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		b.AddEdge(u, v, 0)
	}
	for i := 0; i < lcd; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(2))
	}
	return b.MustBuild()
}

func TestPropertyBodyOrderIsTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(2*n), rng.Intn(n))
		rank := g.BodyRank()
		for _, e := range g.Edges {
			if e.Distance == 0 && rank[e.From] >= rank[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(2*n), rng.Intn(n))
		seen := make([]bool, g.N())
		for _, comp := range g.SCCs() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnwindPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := randomGraph(rng, n, rng.Intn(n), 1+rng.Intn(n))
		u := 1 + rng.Intn(4)
		ug, err := g.Unwind(u)
		if err != nil {
			return false
		}
		if ug.N() != g.N()*u {
			return false
		}
		if len(ug.Edges) != len(g.Edges)*u {
			return false
		}
		// Total latency scales by u.
		return ug.TotalLatency() == g.TotalLatency()*u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
