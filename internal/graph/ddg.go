// Package graph implements the data-dependence-graph substrate used by the
// loop parallelizer: nodes with integer latencies, dependence edges with
// non-negative distances, and the structural queries (strongly connected
// components, topological order, connected components, unwinding) that the
// classification and scheduling algorithms rely on.
//
// A loop is viewed, as in the paper, as a graph whose edges carry a
// dependence distance: distance 0 is an intra-iteration ("simple")
// dependence, distance 1 is a loop-carried dependence, and larger distances
// are reduced to 0/1 by unwinding (see Unwind).
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultCost marks an edge that uses the machine-wide communication cost k
// rather than a per-edge override.
const DefaultCost = -1

// Node is a unit of computation: a single operation or a whole procedure,
// depending on the granularity chosen for the target machine.
type Node struct {
	ID      int    // dense index in [0, len(Nodes))
	Name    string // human-readable label, e.g. "A" or "a[i]=b[i-1]+c"
	Latency int    // execution time in cycles, >= 1
}

// Edge is a data-dependence link From -> To with an iteration distance.
// Distance 0 means the dependence is within one iteration; distance d > 0
// means iteration i's instance of From feeds iteration i+d's instance of To.
type Edge struct {
	From, To int
	Distance int
	// Cost is the communication cost in cycles paid when From and To are
	// placed on different processors. DefaultCost (-1) means "use the
	// machine-wide estimate k". Per the paper, every edge may have its own
	// cost as long as k upper-bounds it.
	Cost int
}

// Graph is an immutable-after-Build data dependence graph.
type Graph struct {
	Nodes []Node
	Edges []Edge

	succ [][]int // node -> indices into Edges (outgoing)
	pred [][]int // node -> indices into Edges (incoming)

	fpOnce sync.Once // memoizes Fingerprint (immutability makes it stable)
	fp     string
}

// Builder incrementally assembles a Graph.
type Builder struct {
	nodes  []Node
	edges  []Edge
	byName map[string]int
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]int)}
}

// AddNode appends a node with the given name and latency and returns its ID.
// Duplicate names are allowed but only the first is found by NodeByName.
func (b *Builder) AddNode(name string, latency int) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Latency: latency})
	if _, dup := b.byName[name]; !dup {
		b.byName[name] = id
	}
	return id
}

// AddEdge appends a dependence edge with the machine-default communication
// cost.
func (b *Builder) AddEdge(from, to, distance int) {
	b.edges = append(b.edges, Edge{From: from, To: to, Distance: distance, Cost: DefaultCost})
}

// AddEdgeCost appends a dependence edge with an explicit communication cost.
func (b *Builder) AddEdgeCost(from, to, distance, cost int) {
	b.edges = append(b.edges, Edge{From: from, To: to, Distance: distance, Cost: cost})
}

// NodeByName returns the ID of the first node added with the given name.
func (b *Builder) NodeByName(name string) (int, bool) {
	id, ok := b.byName[name]
	return id, ok
}

// Build validates the accumulated nodes and edges and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{Nodes: append([]Node(nil), b.nodes...), Edges: append([]Edge(nil), b.edges...)}
	if err := g.init(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for statically-known-good graphs; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// New builds a graph directly from node and edge slices.
func New(nodes []Node, edges []Edge) (*Graph, error) {
	g := &Graph{Nodes: append([]Node(nil), nodes...), Edges: append([]Edge(nil), edges...)}
	if err := g.init(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) init() error {
	n := len(g.Nodes)
	if n == 0 {
		return fmt.Errorf("graph: no nodes")
	}
	for i, nd := range g.Nodes {
		if nd.ID != i {
			return fmt.Errorf("graph: node %q has ID %d, want dense ID %d", nd.Name, nd.ID, i)
		}
		if nd.Latency < 1 {
			return fmt.Errorf("graph: node %q has latency %d, want >= 1", nd.Name, nd.Latency)
		}
	}
	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	for i, e := range g.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph: edge %d (%d->%d) references unknown node", i, e.From, e.To)
		}
		if e.Distance < 0 {
			return fmt.Errorf("graph: edge %d (%d->%d) has negative distance %d", i, e.From, e.To, e.Distance)
		}
		if e.Cost < DefaultCost {
			return fmt.Errorf("graph: edge %d (%d->%d) has invalid cost %d", i, e.From, e.To, e.Cost)
		}
		if e.Distance == 0 && e.From == e.To {
			return fmt.Errorf("graph: edge %d is a zero-distance self loop on node %q", i, g.Nodes[e.From].Name)
		}
		g.succ[e.From] = append(g.succ[e.From], i)
		g.pred[e.To] = append(g.pred[e.To], i)
	}
	// Deterministic adjacency order: by (peer node, distance).
	for v := range g.succ {
		es := g.Edges
		sort.SliceStable(g.succ[v], func(a, b int) bool {
			ea, eb := es[g.succ[v][a]], es[g.succ[v][b]]
			if ea.To != eb.To {
				return ea.To < eb.To
			}
			return ea.Distance < eb.Distance
		})
		sort.SliceStable(g.pred[v], func(a, b int) bool {
			ea, eb := es[g.pred[v][a]], es[g.pred[v][b]]
			if ea.From != eb.From {
				return ea.From < eb.From
			}
			return ea.Distance < eb.Distance
		})
	}
	// The intra-iteration (distance 0) subgraph must be acyclic, otherwise
	// the loop body has no sequential meaning.
	if cyc := g.zeroDistanceCycle(); cyc != nil {
		names := make([]string, len(cyc))
		for i, v := range cyc {
			names[i] = g.Nodes[v].Name
		}
		return fmt.Errorf("graph: intra-iteration dependences form a cycle: %s", strings.Join(names, " -> "))
	}
	return nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Nodes) }

// Out returns the outgoing edge indices of v.
func (g *Graph) Out(v int) []int { return g.succ[v] }

// In returns the incoming edge indices of v.
func (g *Graph) In(v int) []int { return g.pred[v] }

// Succs returns the distinct successor node IDs of v in ascending order.
func (g *Graph) Succs(v int) []int {
	return g.peers(g.succ[v], func(e Edge) int { return e.To })
}

// Preds returns the distinct predecessor node IDs of v in ascending order.
func (g *Graph) Preds(v int) []int {
	return g.peers(g.pred[v], func(e Edge) int { return e.From })
}

func (g *Graph) peers(edgeIdx []int, pick func(Edge) int) []int {
	out := make([]int, 0, len(edgeIdx))
	seen := -1
	for _, ei := range edgeIdx {
		p := pick(g.Edges[ei])
		if p != seen || len(out) == 0 {
			if len(out) == 0 || out[len(out)-1] != p {
				out = append(out, p)
			}
			seen = p
		}
	}
	return out
}

// TotalLatency returns the sum of all node latencies: the sequential
// execution time of one iteration.
func (g *Graph) TotalLatency() int {
	sum := 0
	for _, nd := range g.Nodes {
		sum += nd.Latency
	}
	return sum
}

// MaxDistance returns the largest dependence distance in the graph.
func (g *Graph) MaxDistance() int {
	d := 0
	for _, e := range g.Edges {
		if e.Distance > d {
			d = e.Distance
		}
	}
	return d
}

// MaxCost returns the largest explicit edge cost, or def for edges using the
// default.
func (g *Graph) MaxCost(def int) int {
	m := 0
	for _, e := range g.Edges {
		c := e.Cost
		if c == DefaultCost {
			c = def
		}
		if c > m {
			m = c
		}
	}
	return m
}

// EdgeCost resolves an edge's communication cost against the machine-wide
// default k.
func EdgeCost(e Edge, k int) int {
	if e.Cost == DefaultCost {
		return k
	}
	return e.Cost
}

// zeroDistanceCycle returns a cycle among distance-0 edges, or nil.
func (g *Graph) zeroDistanceCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = grey
		for _, ei := range g.succ[v] {
			e := g.Edges[ei]
			if e.Distance != 0 {
				continue
			}
			w := e.To
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case grey:
				// Found a cycle w -> ... -> v -> w.
				cycle = []int{w}
				for x := v; x != w && x != -1; x = parent[x] {
					cycle = append(cycle, x)
				}
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				cycle = append(cycle, w)
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < g.N(); v++ {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// InducedSubgraph returns the subgraph induced by keep (a set of node IDs),
// along with a mapping newID -> oldID. Edges with either endpoint outside
// keep are dropped. Node IDs are renumbered densely preserving order.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int, error) {
	sorted := append([]int(nil), keep...)
	sort.Ints(sorted)
	oldToNew := make(map[int]int, len(sorted))
	var nodes []Node
	var newToOld []int
	for _, v := range sorted {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced subgraph references unknown node %d", v)
		}
		if _, dup := oldToNew[v]; dup {
			continue
		}
		id := len(nodes)
		oldToNew[v] = id
		nd := g.Nodes[v]
		nodes = append(nodes, Node{ID: id, Name: nd.Name, Latency: nd.Latency})
		newToOld = append(newToOld, v)
	}
	var edges []Edge
	for _, e := range g.Edges {
		f, okf := oldToNew[e.From]
		t, okt := oldToNew[e.To]
		if okf && okt {
			edges = append(edges, Edge{From: f, To: t, Distance: e.Distance, Cost: e.Cost})
		}
	}
	sub, err := New(nodes, edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp, err := New(g.Nodes, g.Edges)
	if err != nil {
		panic("graph: clone of valid graph failed: " + err.Error())
	}
	return cp
}

// String renders a compact description for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{%d nodes, %d edges}", len(g.Nodes), len(g.Edges))
	return sb.String()
}

// Format renders the full node and edge lists, one per line.
func (g *Graph) Format() string {
	var sb strings.Builder
	for _, nd := range g.Nodes {
		fmt.Fprintf(&sb, "node %d %q lat=%d\n", nd.ID, nd.Name, nd.Latency)
	}
	for _, e := range g.Edges {
		cost := "k"
		if e.Cost != DefaultCost {
			cost = fmt.Sprint(e.Cost)
		}
		fmt.Fprintf(&sb, "edge %s -> %s dist=%d cost=%s\n", g.Nodes[e.From].Name, g.Nodes[e.To].Name, e.Distance, cost)
	}
	return sb.String()
}
