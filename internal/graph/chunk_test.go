package graph

import (
	"strings"
	"testing"
)

func mustBuild(t *testing.T, nodes []Node, edges []Edge) *Graph {
	t.Helper()
	g, err := New(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChunkedEdgeMapping pins the distance arithmetic: d = q*G + s maps
// to chunk distance q when s == 0 and to the pair {q, q+1} otherwise,
// latencies fold G-fold, and zero-distance chunk self-edges vanish.
func TestChunkedEdgeMapping(t *testing.T) {
	g := mustBuild(t,
		[]Node{{ID: 0, Name: "a", Latency: 2}, {ID: 1, Name: "b", Latency: 3}},
		[]Edge{
			{From: 0, To: 0, Distance: 1},  // self recurrence: folds into the chunk
			{From: 0, To: 1, Distance: 0},  // chain link: stays at distance 0
			{From: 0, To: 1, Distance: 6},  // s == 0 at grain 3: exactly q = 2
			{From: 1, To: 0, Distance: 7},  // s != 0 at grain 3: q = 2 and q+1 = 3
			{From: 1, To: 1, Distance: 12}, // self, s == 0: q = 4 survives
		})
	cg, err := Chunked(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Nodes[0].Latency != 6 || cg.Nodes[1].Latency != 9 {
		t.Fatalf("latencies not folded: %d, %d", cg.Nodes[0].Latency, cg.Nodes[1].Latency)
	}
	want := map[Edge]bool{
		{From: 0, To: 0, Distance: 1}:  true, // ceil(1/3) via the q+1 branch (q=0 self dropped)
		{From: 0, To: 1, Distance: 0}:  true,
		{From: 0, To: 1, Distance: 2}:  true,
		{From: 1, To: 0, Distance: 2}:  true,
		{From: 1, To: 0, Distance: 3}:  true,
		{From: 1, To: 1, Distance: 4}:  true,
	}
	if len(cg.Edges) != len(want) {
		t.Fatalf("edges = %+v, want %d of them", cg.Edges, len(want))
	}
	for _, e := range cg.Edges {
		if !want[Edge{From: e.From, To: e.To, Distance: e.Distance, Cost: e.Cost}] {
			t.Fatalf("unexpected chunk edge %+v (all: %+v)", e, cg.Edges)
		}
	}
}

// TestChunkedIdentityAndDedup pins grain <= 1 as the identity and the
// deduplication of mapped edges that collide.
func TestChunkedIdentityAndDedup(t *testing.T) {
	g := mustBuild(t,
		[]Node{{ID: 0, Name: "a", Latency: 1}, {ID: 1, Name: "b", Latency: 1}},
		[]Edge{
			{From: 0, To: 1, Distance: 2}, // at grain 2: q=1
			{From: 0, To: 1, Distance: 3}, // at grain 2: {1, 2} — 1 collides
			{From: 1, To: 1, Distance: 1},
		})
	for _, grain := range []int{0, 1} {
		if cg, err := Chunked(g, grain); err != nil || cg != g {
			t.Fatalf("grain %d: got (%p, %v), want identity", grain, cg, err)
		}
	}
	cg, err := Chunked(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := map[int]int{}
	for _, e := range cg.Edges {
		if e.From == 0 && e.To == 1 {
			dist[e.Distance]++
		}
	}
	if len(dist) != 2 || dist[1] != 1 || dist[2] != 1 {
		t.Fatalf("a->b chunk distances = %v, want exactly {1, 2}", dist)
	}
}

// TestChunkedInfeasibleGrain pins the rejection of grains that fold a
// cross-node dependence cycle into distance zero.
func TestChunkedInfeasibleGrain(t *testing.T) {
	g := mustBuild(t,
		[]Node{{ID: 0, Name: "a", Latency: 1}, {ID: 1, Name: "b", Latency: 1}},
		[]Edge{
			{From: 0, To: 1, Distance: 0},
			{From: 1, To: 0, Distance: 1}, // cycle a -> b -> a, total distance 1
		})
	if _, err := Chunked(g, 1); err != nil {
		t.Fatalf("grain 1 must stay feasible: %v", err)
	}
	_, err := Chunked(g, 2)
	if err == nil {
		t.Fatal("grain 2 accepted despite a zero-distance chunk cycle")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("unexpected error: %v", err)
	}
}
