package graph

import "fmt"

// Unwind unrolls the loop body u times, producing a graph over u copies of
// every node. The copy of node v for unroll position j (0 <= j < u) is named
// "name#j". An edge v->w with distance d becomes, for each source position
// j, an edge from copy (v,j) to copy (w, (j+d) mod u) with distance
// (j+d) div u.
//
// Per [MuSi87] (paper footnote 2), unwinding by u >= max distance reduces
// all dependence distances to 0 or 1: after unrolling, j+d <= (u-1)+u-1 <
// 2u, hence the new distance is 0 or 1 whenever d <= u.
func (g *Graph) Unwind(u int) (*Graph, error) {
	if u < 1 {
		return nil, fmt.Errorf("graph: unwind factor %d, want >= 1", u)
	}
	if u == 1 {
		return g.Clone(), nil
	}
	n := g.N()
	nodes := make([]Node, 0, n*u)
	for j := 0; j < u; j++ {
		for _, nd := range g.Nodes {
			nodes = append(nodes, Node{
				ID:      j*n + nd.ID,
				Name:    fmt.Sprintf("%s#%d", nd.Name, j),
				Latency: nd.Latency,
			})
		}
	}
	var edges []Edge
	for _, e := range g.Edges {
		for j := 0; j < u; j++ {
			tgt := j + e.Distance
			edges = append(edges, Edge{
				From:     j*n + e.From,
				To:       (tgt%u)*n + e.To,
				Distance: tgt / u,
				Cost:     e.Cost,
			})
		}
	}
	return New(nodes, edges)
}

// NormalizeDistances returns a graph whose dependence distances are all 0 or
// 1, unwinding by the maximum distance if necessary. The returned factor is
// the number of original iterations represented by one iteration of the
// result (1 when no unwinding was needed).
func (g *Graph) NormalizeDistances() (*Graph, int, error) {
	d := g.MaxDistance()
	if d <= 1 {
		return g.Clone(), 1, nil
	}
	ug, err := g.Unwind(d)
	if err != nil {
		return nil, 0, err
	}
	if md := ug.MaxDistance(); md > 1 {
		return nil, 0, fmt.Errorf("graph: normalize left distance %d", md)
	}
	return ug, d, nil
}

// InstanceID identifies one dynamic instance of a node: the Iter-th
// iteration's execution of node Node.
type InstanceID struct {
	Node int
	Iter int
}

// InstancePreds returns the dynamic predecessors of instance (v, iter):
// for each incoming edge u->v with distance d, the instance (u, iter-d),
// omitting instances from before iteration 0 (loop boundary).
func (g *Graph) InstancePreds(v, iter int) []InstanceID {
	var out []InstanceID
	for _, ei := range g.pred[v] {
		e := g.Edges[ei]
		src := iter - e.Distance
		if src < 0 {
			continue
		}
		out = append(out, InstanceID{Node: e.From, Iter: src})
	}
	return out
}

// InstancePredCount returns how many dynamic predecessors instance (v, iter)
// has (the number of incoming edges whose source iteration is >= 0).
func (g *Graph) InstancePredCount(v, iter int) int {
	c := 0
	for _, ei := range g.pred[v] {
		if iter-g.Edges[ei].Distance >= 0 {
			c++
		}
	}
	return c
}
