package graph

import "fmt"

// Chunked returns the grain-G derivative of g: the dependence graph of
// the loop whose iteration c executes original iterations
// [c*grain, (c+1)*grain) back to back. Node IDs and names are preserved;
// each latency is multiplied by grain (one chunk instance does grain
// iterations of compute). A dependence edge (u -> v, distance d) with
// d = q*grain + s (0 <= s < grain) becomes:
//
//   - chunk distance q alone when s == 0 (every consumer iteration's
//     source lands exactly q chunks back);
//   - chunk distances q and q+1 when s > 0 (consumer iteration c*grain+r
//     reads from chunk c-q when r >= s and from chunk c-q-1 when r < s).
//
// Zero-distance chunk self-edges are dropped: within one chunk instance
// the iterations run in ascending order, so a same-chunk, same-node
// dependence is satisfied by construction. Zero-distance chunk edges
// between distinct nodes are kept — they order the nodes' chunk
// instances exactly like the original distance-0 edges ordered their
// iterations. A grain that folds a cross-node dependence cycle into
// distance zero has no valid chunk execution order; graph construction
// rejects it and Chunked reports the grain as infeasible.
//
// Edge costs carry over unchanged (a chunk-boundary message still moves
// one value block between the same two nodes); exact duplicate edges
// produced by the mapping are deduplicated.
//
// Grain values <= 1 return g itself: grain 1 is the identity.
func Chunked(g *Graph, grain int) (*Graph, error) {
	if grain <= 1 {
		return g, nil
	}
	nodes := make([]Node, len(g.Nodes))
	for i, nd := range g.Nodes {
		nodes[i] = Node{ID: nd.ID, Name: nd.Name, Latency: nd.Latency * grain}
	}
	seen := make(map[Edge]bool, len(g.Edges)*2)
	edges := make([]Edge, 0, len(g.Edges)*2)
	add := func(from, to, dist, cost int) {
		if dist == 0 && from == to {
			return // satisfied by in-chunk ascending iteration order
		}
		e := Edge{From: from, To: to, Distance: dist, Cost: cost}
		if seen[e] {
			return
		}
		seen[e] = true
		edges = append(edges, e)
	}
	for _, e := range g.Edges {
		q, s := e.Distance/grain, e.Distance%grain
		add(e.From, e.To, q, e.Cost)
		if s != 0 {
			add(e.From, e.To, q+1, e.Cost)
		}
	}
	cg, err := New(nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: grain %d infeasible for this loop: %w", grain, err)
	}
	return cg, nil
}
