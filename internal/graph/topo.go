package graph

import "fmt"

// BodyOrder returns a deterministic topological order of the loop body with
// respect to intra-iteration (distance 0) dependences only. Among ready
// nodes the smallest ID is emitted first. This is the canonical statement
// order used for sequential execution and as the consistent tie-breaking
// order required by the scheduler (paper footnote 7).
func (g *Graph) BodyOrder() []int {
	n := g.N()
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	// Min-heap of ready node IDs, implemented inline to avoid a dependency
	// on container/heap interface plumbing for a hot, simple case.
	ready := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready.push(v)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, ei := range g.succ[v] {
			e := g.Edges[ei]
			if e.Distance != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready.push(e.To)
			}
		}
	}
	if len(order) != n {
		// init() guarantees the distance-0 subgraph is acyclic.
		panic(fmt.Sprintf("graph: body order found %d of %d nodes", len(order), n))
	}
	return order
}

// BodyRank returns rank[v] = position of v in BodyOrder.
func (g *Graph) BodyRank() []int {
	order := g.BodyOrder()
	rank := make([]int, len(order))
	for i, v := range order {
		rank[v] = i
	}
	return rank
}

// ASAPLevels returns, for each node, the earliest start time within a single
// iteration considering only distance-0 edges and node latencies (the
// idealized Perfect-Pipelining levels with zero communication cost).
func (g *Graph) ASAPLevels() []int {
	levels := make([]int, g.N())
	for _, v := range g.BodyOrder() {
		start := 0
		for _, ei := range g.pred[v] {
			e := g.Edges[ei]
			if e.Distance != 0 {
				continue
			}
			fin := levels[e.From] + g.Nodes[e.From].Latency
			if fin > start {
				start = fin
			}
		}
		levels[v] = start
	}
	return levels
}

// CriticalPathPerIteration returns the maximum, over all cycles C in the
// dependence graph, of ceil(latency(C) / distance(C)): the well-known lower
// bound on steady-state cycles per iteration for any schedule honoring the
// compile-time dependences (communication cost excluded). It returns 0 for
// acyclic graphs (DOALL loops).
//
// The bound is computed by binary search on the rate r combined with a
// Bellman-Ford negative-cycle test on edge weights latency(u) - r*distance,
// using exact integer arithmetic on a common denominator.
func (g *Graph) CriticalPathPerIteration() int {
	if !g.HasCycle() {
		return 0
	}
	// r is an integer number of cycles per iteration; feasible(r) means no
	// cycle has latency(C) > r*distance(C).
	feasible := func(r int) bool {
		n := g.N()
		dist := make([]int64, n)
		for iter := 0; iter < n; iter++ {
			changed := false
			for _, e := range g.Edges {
				w := int64(g.Nodes[e.From].Latency) - int64(r)*int64(e.Distance)
				if dist[e.From]+w > dist[e.To] {
					dist[e.To] = dist[e.From] + w
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		// One more relaxation pass detects a positive cycle.
		for _, e := range g.Edges {
			w := int64(g.Nodes[e.From].Latency) - int64(r)*int64(e.Distance)
			if dist[e.From]+w > dist[e.To] {
				return false
			}
		}
		return true
	}
	lo, hi := 1, g.TotalLatency()
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// intHeap is a minimal min-heap of ints.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
