package graph

import "sort"

// SCCs returns the strongly connected components of the graph, treating
// every edge (regardless of distance) as a directed link. Components are
// returned in reverse topological order of the condensation (Tarjan's
// order), each component sorted by node ID.
//
// A single node with no self-edge forms a trivial component; the paper's
// notion of "strongly connected subgraph" (Lemma 1) corresponds to the
// non-trivial components returned by NonTrivialSCCs.
func (g *Graph) SCCs() [][]int {
	n := g.N()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to survive deep graphs without blowing the stack.
	type frame struct {
		v  int
		ei int // position within g.succ[v]
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.succ[v]) {
				e := g.Edges[g.succ[v][f.ei]]
				f.ei++
				w := e.To
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			dfs(v)
		}
	}
	return comps
}

// NonTrivialSCCs returns only components that contain a cycle: either more
// than one node, or a single node with a self-edge (of any distance).
func (g *Graph) NonTrivialSCCs() [][]int {
	var out [][]int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			out = append(out, comp)
			continue
		}
		v := comp[0]
		for _, ei := range g.succ[v] {
			if g.Edges[ei].To == v {
				out = append(out, comp)
				break
			}
		}
	}
	return out
}

// HasCycle reports whether the graph, with all edges treated as directed
// links regardless of distance, contains any cycle.
func (g *Graph) HasCycle() bool {
	return len(g.NonTrivialSCCs()) > 0
}

// ConnectedComponents returns the weakly connected components (treating
// edges as undirected), each sorted by node ID, ordered by smallest member.
// The paper assumes a connected dependence graph and applies the scheduler
// to each component independently.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges {
		union(e.From, e.To)
	}
	groups := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		comp := groups[r]
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}
