package graph

import "testing"

func fpGraph(t *testing.T, nodes []Node, edges []Edge) *Graph {
	t.Helper()
	g, err := New(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintContentAddressing(t *testing.T) {
	nodes := []Node{{ID: 0, Name: "A", Latency: 1}, {ID: 1, Name: "B", Latency: 2}}
	e1 := Edge{From: 0, To: 1, Distance: 0, Cost: DefaultCost}
	e2 := Edge{From: 1, To: 0, Distance: 1, Cost: DefaultCost}

	g := fpGraph(t, nodes, []Edge{e1, e2})
	same := fpGraph(t, nodes, []Edge{e1, e2})
	if g.Fingerprint() != same.Fingerprint() {
		t.Fatal("identical graphs disagree")
	}
	if g.Fingerprint() != g.Clone().Fingerprint() {
		t.Fatal("clone disagrees")
	}

	// Edge insertion order is canonicalized away.
	reordered := fpGraph(t, nodes, []Edge{e2, e1})
	if g.Fingerprint() != reordered.Fingerprint() {
		t.Fatal("edge order changed the fingerprint")
	}

	// Content changes change the fingerprint.
	for name, other := range map[string]*Graph{
		"latency": fpGraph(t, []Node{{ID: 0, Name: "A", Latency: 3}, {ID: 1, Name: "B", Latency: 2}}, []Edge{e1, e2}),
		"name":    fpGraph(t, []Node{{ID: 0, Name: "Z", Latency: 1}, {ID: 1, Name: "B", Latency: 2}}, []Edge{e1, e2}),
		"dist":    fpGraph(t, nodes, []Edge{e1, {From: 1, To: 0, Distance: 2, Cost: DefaultCost}}),
		"cost":    fpGraph(t, nodes, []Edge{e1, {From: 1, To: 0, Distance: 1, Cost: 4}}),
		"edges":   fpGraph(t, nodes, []Edge{e2}),
	} {
		if g.Fingerprint() == other.Fingerprint() {
			t.Fatalf("%s change kept the fingerprint", name)
		}
	}
}
