package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Fingerprint returns a content hash of the graph: two graphs share a
// fingerprint exactly when they have the same nodes (name, latency, in ID
// order) and the same dependence edges (endpoint IDs, distance, cost,
// irrespective of insertion order). It is the graph half of the plan-cache
// key in internal/pipeline: schedules depend only on this content, so a
// fingerprint match makes a cached plan reusable. The hash is computed
// once per Graph and memoized, so the cache-hit path pays a lookup, not a
// rehash.
func (g *Graph) Fingerprint() string {
	g.fpOnce.Do(func() { g.fp = g.fingerprint() })
	return g.fp
}

func (g *Graph) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "v1 %d %d\n", len(g.Nodes), len(g.Edges))
	for _, nd := range g.Nodes {
		fmt.Fprintf(h, "n %q %d\n", nd.Name, nd.Latency)
	}
	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(a, b int) bool {
		ea, eb := edges[a], edges[b]
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		if ea.To != eb.To {
			return ea.To < eb.To
		}
		if ea.Distance != eb.Distance {
			return ea.Distance < eb.Distance
		}
		return ea.Cost < eb.Cost
	})
	for _, e := range edges {
		fmt.Fprintf(h, "e %d %d %d %d\n", e.From, e.To, e.Distance, e.Cost)
	}
	return hex.EncodeToString(h.Sum(nil))
}
