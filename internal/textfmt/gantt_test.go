package textfmt

import (
	"strings"
	"testing"

	"mimdloop/internal/graph"
	"mimdloop/internal/plan"
)

func TestGanttRendering(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode("A", 2)
	c := b.AddNode("B", 1)
	b.AddEdge(a, c, 0)
	g := b.MustBuild()
	s := &plan.Schedule{
		Graph:      g,
		Timing:     plan.Timing{CommCost: 1},
		Processors: 2,
		Placements: []plan.Placement{
			{Node: a, Iter: 0, Proc: 0, Start: 0},
			{Node: c, Iter: 0, Proc: 1, Start: 3},
		},
	}
	out := Gantt(s, 0)
	if !strings.Contains(out, "PE0") || !strings.Contains(out, "PE1") {
		t.Fatalf("missing processor headers:\n%s", out)
	}
	if !strings.Contains(out, "A0") || !strings.Contains(out, "B0") {
		t.Fatalf("missing node labels:\n%s", out)
	}
	// Latency-2 op shows a continuation dot on its second cycle.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], ".") {
		t.Fatalf("missing continuation marker on cycle 1:\n%s", out)
	}
}

func TestGanttTruncation(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode("X", 1)
	b.AddEdge(a, a, 1)
	g := b.MustBuild()
	s := &plan.Schedule{Graph: g, Processors: 1}
	for i := 0; i < 10; i++ {
		s.Placements = append(s.Placements, plan.Placement{Node: a, Iter: i, Proc: 0, Start: i})
	}
	out := Gantt(s, 3)
	if !strings.Contains(out, "more cycles") {
		t.Fatalf("missing truncation note:\n%s", out)
	}
	if strings.Contains(out, "X9") {
		t.Fatalf("truncated output shows late placements:\n%s", out)
	}
}
