// Package textfmt renders schedules as the step-by-processor tables the
// paper's figures use (Figures 3(c), 7(d), 8, 9(c)).
package textfmt

import (
	"fmt"
	"strings"

	"mimdloop/internal/plan"
)

// Gantt renders the first maxCycles cycles of a schedule, one row per
// cycle, one column per processor, each cell showing node name and
// iteration subscript ("A3") with '.' continuation for multi-cycle
// operations. maxCycles <= 0 renders everything.
func Gantt(s *plan.Schedule, maxCycles int) string {
	g := s.Graph
	end := s.Makespan()
	if maxCycles > 0 && maxCycles < end {
		end = maxCycles
	}
	procs := s.Processors
	if pu := s.ByProc(); len(pu) > procs {
		procs = len(pu)
	}
	grid := make([][]string, end)
	for c := range grid {
		grid[c] = make([]string, procs)
	}
	width := 5
	for _, pl := range s.Placements {
		lat := g.Nodes[pl.Node].Latency
		label := fmt.Sprintf("%s%d", g.Nodes[pl.Node].Name, pl.Iter)
		if len(label)+1 > width {
			width = len(label) + 1
		}
		for c := pl.Start; c < pl.Start+lat && c < end; c++ {
			if c == pl.Start {
				grid[c][pl.Proc] = label
			} else {
				grid[c][pl.Proc] = "."
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s", "step")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&sb, " %*s", width, fmt.Sprintf("PE%d", p))
	}
	sb.WriteString("\n")
	for c := 0; c < end; c++ {
		fmt.Fprintf(&sb, "%6d", c)
		for p := 0; p < procs; p++ {
			fmt.Fprintf(&sb, " %*s", width, grid[c][p])
		}
		sb.WriteString("\n")
	}
	if end < s.Makespan() {
		fmt.Fprintf(&sb, "... (%d more cycles)\n", s.Makespan()-end)
	}
	return sb.String()
}
